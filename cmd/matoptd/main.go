// Command matoptd is the optimize-and-execute daemon: it serves the
// optimizer and the execution engines over JSON HTTP so many clients
// share one plan cache and one coalescing boundary.
//
// Endpoints (all POST JSON unless noted):
//
//	/optimize  optimize a workload spec; returns the annotated plan,
//	           its fingerprint, predicted seconds, and cache/coalesce
//	           provenance
//	/execute   optimize and run a spec on the chosen engine (seq, dist
//	           with shards/faults/fallback, or sim); outputs are
//	           base64-encoded float64 bits with SHA-256 digests
//	/plan      serialize the optimized physical plan, or validate a
//	           previously serialized one against a spec (round-trips
//	           plan.Encode/Decode)
//	/metrics   GET; the metrics registry as text or JSON (?format=json)
//	/healthz   GET; 200 while serving, 503 once draining
//
// Admission control bounds concurrent executions (-workers) and the
// wait queue (-max-queue); a request hitting a full queue gets 429
// immediately, one waiting past -queue-timeout gets 503, and every
// request runs under -request-timeout (shortenable per request with
// "deadline_ms"). SIGINT/SIGTERM starts a graceful drain: health flips
// to 503, new requests are shed, in-flight requests finish (bounded by
// -drain-timeout), then the listener closes.
//
// Usage:
//
//	matoptd -addr :8080 -workers 8 -cluster-workers 5
//	curl -s localhost:8080/optimize -d '{"workload":"chain"}'
//
// With -worker the process is an exchange worker instead: it hosts the
// dist engine's shuffle inboxes for remote shards over the netfabric
// TCP transport, serving coordinators started with `matopt -peers` (or
// a daemon handling "peers" execute requests). A worker holds no plan
// state — it can join or leave between runs freely.
//
//	matoptd -worker -listen 127.0.0.1:9431
//	matopt -workload chain -engine dist -shards 4 -peers 127.0.0.1:9431
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"matopt/internal/netfabric"
	"matopt/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("matoptd: ")

	var cfg daemonConfig
	flag.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.Workers, "workers", 0, "concurrent request executions (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.MaxQueue, "max-queue", 64, "admission queue depth (0 = default)")
	flag.DurationVar(&cfg.QueueTimeout, "queue-timeout", 5*time.Second, "max wait in the admission queue")
	flag.DurationVar(&cfg.RequestTimeout, "request-timeout", 60*time.Second, "default per-request deadline")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	flag.StringVar(&cfg.Formats, "formats", "all", "format universe: all | dense")
	flag.IntVar(&cfg.ClusterWorkers, "cluster-workers", 5, "cost-model cluster size (paper's r5d cluster)")
	flag.IntVar(&cfg.PlanCache, "plan-cache", 0, "plan-cache capacity (0 = default)")
	flag.BoolVar(&cfg.Trace, "trace", false, "attach a tracer to every request")
	flag.BoolVar(&cfg.Worker, "worker", false, "run as a netfabric exchange worker (serves matopt -peers coordinators)")
	flag.StringVar(&cfg.Listen, "listen", "", "worker-mode listen address (e.g. 127.0.0.1:9431)")
	flag.Parse()
	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}
	if cfg.Worker {
		runWorker(cfg.Listen)
		return
	}

	srv := serve.New(cfg.serveConfig())
	httpSrv := &http.Server{Addr: cfg.Addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (workers=%d queue=%d)", cfg.Addr, cfg.Workers, cfg.MaxQueue)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("listener failed: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: shed new work, finish in-flight requests, then
	// close the listener (whose handlers have all returned by now).
	log.Printf("signal received; draining (bound %v)", cfg.DrainTimeout)
	start := time.Now()
	if err := srv.Drain(context.Background()); err != nil {
		log.Printf("drain hit its deadline; stragglers were cancelled: %v", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener shutdown: %v", err)
	}
	<-errc // ListenAndServe has returned
	log.Printf("drained and stopped in %v", time.Since(start).Round(time.Millisecond))
}

// runWorker hosts exchange inboxes on addr until SIGINT/SIGTERM, then
// shuts down gracefully: stop accepting, sever live connections, wait
// for every handler to exit.
func runWorker(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("worker listen %s: %v", addr, err)
	}
	srv := netfabric.NewServer()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("worker serving exchanges on %s", ln.Addr())
		errc <- srv.Serve(ln)
	}()
	select {
	case err := <-errc:
		log.Fatalf("worker failed: %v", err)
	case <-ctx.Done():
	}
	log.Printf("signal received; closing worker")
	start := time.Now()
	if err := srv.Close(); err != nil {
		log.Printf("worker close: %v", err)
	}
	<-errc // Serve has returned
	log.Printf("worker stopped in %v", time.Since(start).Round(time.Millisecond))
}
