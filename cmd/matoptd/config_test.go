package main

import (
	"strings"
	"testing"
	"time"

	"matopt"
)

func goodConfig() daemonConfig {
	return daemonConfig{
		Addr:           ":8080",
		MaxQueue:       64,
		QueueTimeout:   5 * time.Second,
		RequestTimeout: time.Minute,
		DrainTimeout:   30 * time.Second,
		Formats:        "all",
		ClusterWorkers: 5,
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*daemonConfig)
		want string
	}{
		{"empty addr", func(c *daemonConfig) { c.Addr = "" }, "-addr"},
		{"negative workers", func(c *daemonConfig) { c.Workers = -1 }, "-workers"},
		{"negative queue", func(c *daemonConfig) { c.MaxQueue = -1 }, "-max-queue"},
		{"negative queue timeout", func(c *daemonConfig) { c.QueueTimeout = -time.Second }, "-queue-timeout"},
		{"negative request timeout", func(c *daemonConfig) { c.RequestTimeout = -time.Second }, "-request-timeout"},
		{"negative drain timeout", func(c *daemonConfig) { c.DrainTimeout = -time.Second }, "-drain-timeout"},
		{"zero cluster", func(c *daemonConfig) { c.ClusterWorkers = 0 }, "-cluster-workers"},
		{"negative plan cache", func(c *daemonConfig) { c.PlanCache = -1 }, "-plan-cache"},
		{"bad formats", func(c *daemonConfig) { c.Formats = "sparse" }, "format universe"},
		{"worker without listen", func(c *daemonConfig) { c.Worker = true }, "-worker requires -listen"},
		{"listen without worker", func(c *daemonConfig) { c.Listen = ":9431" }, "-listen requires -worker"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := goodConfig()
			c.mut(&cfg)
			err := cfg.validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("validate() = %v, want mention of %q", err, c.want)
			}
		})
	}
	if err := goodConfig().validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	// Worker mode ignores the HTTP daemon's flags entirely.
	worker := daemonConfig{Worker: true, Listen: "127.0.0.1:9431"}
	if err := worker.validate(); err != nil {
		t.Fatalf("worker config rejected: %v", err)
	}
}

func TestServeConfigMapping(t *testing.T) {
	cfg := goodConfig()
	cfg.Workers = 3
	cfg.Formats = "dense"
	cfg.PlanCache = 7
	cfg.Trace = true
	sc := cfg.serveConfig()
	if sc.Workers != 3 || sc.MaxQueue != 64 || sc.PlanCacheSize != 7 || !sc.Tracing {
		t.Fatalf("mapping lost fields: %+v", sc)
	}
	if sc.Formats != matopt.DenseFormats {
		t.Fatalf("formats = %v, want DenseFormats", sc.Formats)
	}
	if sc.Cluster.Workers != 5 {
		t.Fatalf("cluster workers = %d, want 5", sc.Cluster.Workers)
	}
	if sc.QueueTimeout != 5*time.Second || sc.RequestTimeout != time.Minute || sc.DrainTimeout != 30*time.Second {
		t.Fatalf("timeouts lost: %+v", sc)
	}
}
