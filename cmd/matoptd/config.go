package main

import (
	"fmt"
	"time"

	"matopt"
	"matopt/internal/serve"
)

// daemonConfig holds the flag values so their validation and the
// serve.Config mapping are testable without invoking main.
type daemonConfig struct {
	Addr           string // listen address
	Workers        int    // concurrent request executions (0 = GOMAXPROCS)
	MaxQueue       int    // admission queue depth
	QueueTimeout   time.Duration
	RequestTimeout time.Duration
	DrainTimeout   time.Duration
	Formats        string // all | dense
	ClusterWorkers int    // cost-model cluster size
	PlanCache      int    // plan-cache capacity (0 = default)
	Trace          bool   // attach a tracer to every request
	Worker         bool   // run as a netfabric exchange worker instead of the HTTP daemon
	Listen         string // worker-mode listen address
}

func (c daemonConfig) validate() error {
	if c.Worker {
		if c.Listen == "" {
			return fmt.Errorf("-worker requires -listen")
		}
		return nil // worker mode ignores the HTTP daemon's flags
	}
	if c.Listen != "" {
		return fmt.Errorf("-listen requires -worker")
	}
	if c.Addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if c.Workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", c.Workers)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("-max-queue must be non-negative, got %d", c.MaxQueue)
	}
	if c.QueueTimeout < 0 {
		return fmt.Errorf("-queue-timeout must be non-negative, got %v", c.QueueTimeout)
	}
	if c.RequestTimeout < 0 {
		return fmt.Errorf("-request-timeout must be non-negative, got %v", c.RequestTimeout)
	}
	if c.DrainTimeout < 0 {
		return fmt.Errorf("-drain-timeout must be non-negative, got %v", c.DrainTimeout)
	}
	if c.ClusterWorkers <= 0 {
		return fmt.Errorf("-cluster-workers must be positive, got %d", c.ClusterWorkers)
	}
	if c.PlanCache < 0 {
		return fmt.Errorf("-plan-cache must be non-negative, got %d", c.PlanCache)
	}
	switch c.Formats {
	case "all", "dense":
	default:
		return fmt.Errorf("unknown format universe %q (want all or dense)", c.Formats)
	}
	return nil
}

// serveConfig maps the validated flags onto the service layer's config.
func (c daemonConfig) serveConfig() serve.Config {
	formats := matopt.AllFormats
	if c.Formats == "dense" {
		formats = matopt.DenseFormats
	}
	return serve.Config{
		Cluster:        matopt.ClusterR5D(c.ClusterWorkers),
		Formats:        formats,
		Workers:        c.Workers,
		MaxQueue:       c.MaxQueue,
		QueueTimeout:   c.QueueTimeout,
		RequestTimeout: c.RequestTimeout,
		DrainTimeout:   c.DrainTimeout,
		PlanCacheSize:  c.PlanCache,
		Tracing:        c.Trace,
	}
}
