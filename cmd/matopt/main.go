// Command matopt optimizes one of the built-in workloads and prints the
// chosen physical design: per-vertex implementations, storage formats,
// edge re-layouts and the predicted running time. Ctrl-C (SIGINT) or
// SIGTERM cancels an in-flight optimization cleanly.
//
//	matopt -workload ffnn -hidden 80000 -workers 10
//	matopt -workload chain -sizeset 2
//	matopt -workload inverse
//	matopt -workload motivating
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"syscall"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/workload"
)

func main() {
	wl := flag.String("workload", "motivating", "motivating | ffnn | ffnn3 | chain | inverse")
	hidden := flag.Int64("hidden", 80000, "FFNN hidden layer size")
	sizeSet := flag.Int("sizeset", 1, "chain size set (1-3)")
	workers := flag.Int("workers", 10, "cluster size")
	sparse := flag.Bool("sparse", false, "allow sparse formats")
	formatSet := flag.String("formats", "all", "format universe: all | ssb (single/strip/block) | sb (single/block)")
	alg := flag.String("alg", "auto", "optimization algorithm: auto (tree DP / frontier) | brute")
	budget := flag.Duration("brute-budget", 30*time.Second, "brute-force time budget")
	par := flag.Int("parallelism", 0, "frontier worker pool size (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print optimizer search statistics")
	dot := flag.Bool("dot", false, "emit the annotated compute graph in Graphviz format (Figure 2 style)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var g *core.Graph
	var err error
	switch *wl {
	case "motivating":
		g, err = workload.MotivatingChain()
	case "ffnn":
		g, err = workload.FFNNW2Update(workload.PaperFFNN(*hidden))
	case "ffnn3":
		g, err = workload.FFNNThreePass(workload.PaperFFNN(*hidden))
	case "chain":
		sets := workload.ChainSizeSets()
		if *sizeSet < 1 || *sizeSet > len(sets) {
			log.Fatalf("sizeset must be in 1..%d", len(sets))
		}
		g, err = workload.MatMulChain(sets[*sizeSet-1])
	case "inverse":
		g, err = workload.BlockInverse2(workload.PaperBlockInverse())
	default:
		log.Fatalf("unknown workload %q", *wl)
	}
	if err != nil {
		log.Fatal(err)
	}

	var universe []format.Format
	switch *formatSet {
	case "all":
		universe = format.All()
	case "ssb":
		universe = format.SingleStripBlock()
	case "sb":
		universe = format.SingleBlock()
	default:
		log.Fatalf("unknown format set %q", *formatSet)
	}
	env := core.NewEnv(costmodel.EC2R5D(*workers), universe)
	if !*sparse {
		env.DisableSparse()
	}
	var sessOpts []core.SessionOption
	if *par > 0 {
		sessOpts = append(sessOpts, core.WithParallelism(*par))
	}
	var ann *core.Annotation
	switch *alg {
	case "auto":
		sess := core.NewSession(ctx, env, sessOpts...)
		ann, err = sess.Optimize(g)
		reportStats(*stats, sess)
	case "brute":
		bctx, cancel := context.WithTimeout(ctx, *budget)
		defer cancel()
		sess := core.NewSession(bctx, env, sessOpts...)
		ann, err = sess.Brute(g)
		reportStats(*stats, sess)
	default:
		log.Fatalf("unknown algorithm %q", *alg)
	}
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}
	if *dot {
		fmt.Print(ann.DOT())
		return
	}
	fmt.Print(ann.Describe())
	rep, err := engine.Simulate(ann, env)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	fmt.Printf("\nsimulated time on %d workers: %s   (optimizer: %.2fs)\n",
		*workers, fmtSec(rep.Seconds), ann.OptSeconds)
	fmt.Printf("features: %.3g FLOPs, %.3g net bytes, %.3g intermediate bytes, %.0f tuples\n",
		rep.Features.FLOPs, rep.Features.NetBytes, rep.Features.InterBytes, rep.Features.Tuples)
	fmt.Printf("peak per-worker working set: %.1f GB\n", rep.PeakWorkerBytes/(1<<30))
}

func reportStats(enabled bool, sess *core.Session) {
	if !enabled {
		return
	}
	st := sess.Stats()
	fmt.Printf("optimizer stats: %d classes expanded, %d entries pruned, %d candidates evaluated, %.3fs wall\n",
		st.ClassesExpanded, st.EntriesPruned, st.CandidatesEvaluated, st.WallSeconds)
}

func fmtSec(s float64) string {
	d := int(s + 0.5)
	if d >= 3600 {
		return fmt.Sprintf("%d:%02d:%02d", d/3600, d%3600/60, d%60)
	}
	return fmt.Sprintf("%d:%02d", d/60, d%60)
}
