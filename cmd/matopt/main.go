// Command matopt optimizes one of the built-in workloads and prints the
// chosen physical design: per-vertex implementations, storage formats,
// edge re-layouts and the predicted running time. Ctrl-C (SIGINT) or
// SIGTERM cancels an in-flight optimization cleanly.
//
// With -engine seq or -engine dist the plan is also executed on real
// (randomly generated) matrices, scaled down by -scale so the workloads
// fit in one process. The dist engine shards every relation across
// -shards workers, verifies its outputs bit-for-bit against the
// sequential engine, and prints the measured shuffle traffic.
//
// -faults N injects a seeded schedule of N deterministic failures
// (crashed tasks, dropped or delayed exchanges, straggler shards) into
// the dist run; the runtime recovers via lineage-based retries (capped
// by -max-retries) and, when retries are exhausted, degrades to the
// sequential engine — outputs stay bit-identical either way.
//
//	matopt -workload ffnn -hidden 80000 -workers 10
//	matopt -workload chain -sizeset 2
//	matopt -workload inverse
//	matopt -workload motivating
//
// -trace prints a span tree of the whole run (optimizer phases, dist
// vertices, exchanges, retries); -trace-out FILE writes the same spans
// as a Chrome trace_event file loadable in chrome://tracing or
// Perfetto; -metrics dumps the process metrics registry (plan-cache
// hit rate, shuffle bytes, retry counts — DESIGN.md §11).
//
// -peers runs the dist engine's exchanges over real TCP: each entry is
// a `matoptd -worker` address (or the literal "local" for in-process
// hosting), and shard s lives on peer s mod len(peers). README's
// "running a real cluster" walks through a two-process loopback run.
//
//	matopt -workload ffnn -engine dist -shards 8 -scale 500
//	matopt -workload chain -engine dist -shards 4 -peers 127.0.0.1:9431
//	matopt -workload chain -engine dist -shards 8 -faults 5 -fault-seed 7
//	matopt -workload ffnn -engine dist -trace -metrics
//	matopt -workload ffnn -engine dist -trace-out trace.json
//
// -explain prints the lowered physical plan — the exact operator DAG
// (scans, re-layouts, compute strategies, frees) every engine executes
// — with per-operator predicted costs. -plan-out FILE serializes that
// plan to JSON; -plan-in FILE loads one back (skipping optimization
// entirely) after checking its fingerprint against the workload and
// cluster, and executes or simulates it like a freshly optimized plan.
//
//	matopt -workload chain -explain
//	matopt -workload chain -plan-out chain.plan.json
//	matopt -workload chain -plan-in chain.plan.json -engine dist
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/netfabric"
	"matopt/internal/obs"
	"matopt/internal/plan"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

func main() {
	wl := flag.String("workload", "motivating", "motivating | ffnn | ffnn3 | chain | inverse")
	hidden := flag.Int64("hidden", 80000, "FFNN hidden layer size")
	sizeSet := flag.Int("sizeset", 1, "chain size set (1-3)")
	workers := flag.Int("workers", 10, "cluster size")
	sparse := flag.Bool("sparse", false, "allow sparse formats")
	formatSet := flag.String("formats", "all", "format universe: all | ssb (single/strip/block) | sb (single/block)")
	alg := flag.String("alg", "auto", "optimization algorithm: auto (tree DP / frontier) | brute")
	budget := flag.Duration("brute-budget", 30*time.Second, "brute-force time budget")
	par := flag.Int("parallelism", runtime.GOMAXPROCS(0), "frontier worker pool size")
	stats := flag.Bool("stats", false, "print optimizer search statistics")
	dot := flag.Bool("dot", false, "emit the annotated compute graph in Graphviz format (Figure 2 style)")
	engSel := flag.String("engine", "sim", "sim (simulate at paper scale) | seq | dist (execute, scaled by -scale)")
	shards := flag.Int("shards", dist.DefaultShards(), "dist engine shard count")
	scale := flag.Int64("scale", 100, "divisor applied to workload dimensions before real execution")
	kernThreads := flag.Int("kernel-threads", 0, "threads per local compute kernel (0 = auto-size to the machine, 1 = serial; bit-identical at every setting)")
	faults := flag.Int("faults", 0, "number of seeded faults to inject into the dist run (0 = none)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the injected fault schedule")
	maxRetries := flag.Int("max-retries", dist.DefaultMaxRetries, "dist engine per-vertex retry budget")
	fallback := flag.Bool("fallback", true, "degrade to the sequential engine when dist retries are exhausted")
	checkpoint := flag.Bool("checkpoint", false, "pin cost-model-chosen intermediates resident for recovery (dist)")
	ckptBudget := flag.Int64("checkpoint-budget", 0, "cap on checkpoint-pinned bytes, deepest vertices first (0 = unbounded)")
	speculate := flag.Bool("speculate", false, "launch speculative duplicates of straggling dist vertices")
	peers := flag.String("peers", "", "comma-separated matoptd -worker addresses for the dist TCP transport (\"local\" = in-process shard)")
	trace := flag.Bool("trace", false, "print a span tree of the run (optimizer phases, dist vertices, exchanges)")
	traceOut := flag.String("trace-out", "", "write the run's spans as a Chrome trace_event file to this path")
	metrics := flag.Bool("metrics", false, "print the process metrics registry after the run")
	explain := flag.Bool("explain", false, "print the lowered physical plan with per-operator costs")
	planOut := flag.String("plan-out", "", "write the serialized physical plan to this path")
	planIn := flag.String("plan-in", "", "load a serialized physical plan from this path instead of optimizing")
	flag.Parse()

	cfg := execConfig{
		Engine: *engSel, Shards: *shards, Scale: *scale, Parallelism: *par,
		KernThreads: *kernThreads,
		Faults:      *faults, FaultSeed: *faultSeed, MaxRetries: *maxRetries,
		Fallback: *fallback, Checkpoint: *checkpoint, CkptBudget: *ckptBudget,
		Speculate: *speculate, Peers: *peers,
		Trace: *trace, TraceOut: *traceOut, Metrics: *metrics,
		Explain: *explain, PlanOut: *planOut, PlanIn: *planIn,
	}
	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}
	execute := cfg.Engine != "sim"

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var g *core.Graph
	var inputs map[string]*tensor.Dense
	var err error
	rng := rand.New(rand.NewSource(1))
	if execute {
		g, inputs, err = buildExecutable(*wl, *hidden, *sizeSet, *scale, rng)
	} else {
		g, err = buildPaperScale(*wl, *hidden, *sizeSet)
	}
	if err != nil {
		log.Fatal(err)
	}

	var universe []format.Format
	switch *formatSet {
	case "all":
		universe = format.All()
	case "ssb":
		universe = format.SingleStripBlock()
	case "sb":
		universe = format.SingleBlock()
	default:
		log.Fatalf("unknown format set %q", *formatSet)
	}
	env := core.NewEnv(costmodel.EC2R5D(*workers), universe)
	if !*sparse {
		env.DisableSparse()
	}
	// One root span wraps optimization and execution so the exported
	// trace's top-level spans cover the whole measured run.
	var tr *obs.Tracer
	var root *obs.Span
	if cfg.tracing() {
		tr = obs.NewTracer()
		root = tr.Start(nil, "matopt").SetStr("workload", *wl).SetStr("engine", cfg.Engine)
	}
	sessOpts := []core.SessionOption{core.WithParallelism(*par)}
	if tr != nil {
		sessOpts = append(sessOpts, core.WithTracer(tr, root))
	}
	var ann *core.Annotation
	var phys *plan.Plan
	if cfg.PlanIn != "" {
		// Replay a previously serialized physical plan: no optimization,
		// just fingerprint-checked decoding against this graph and env.
		data, rerr := os.ReadFile(cfg.PlanIn)
		if rerr != nil {
			log.Fatalf("-plan-in: %v", rerr)
		}
		if phys, err = plan.Decode(g, env, data); err != nil {
			log.Fatalf("-plan-in: %v", err)
		}
		ann = phys.Ann
		fmt.Printf("loaded physical plan (%d nodes) from %s\n", len(phys.Nodes), cfg.PlanIn)
	} else {
		switch *alg {
		case "auto":
			sess := core.NewSession(ctx, env, sessOpts...)
			ann, err = sess.Optimize(g)
			reportStats(*stats, sess)
		case "brute":
			bctx, cancel := context.WithTimeout(ctx, *budget)
			defer cancel()
			sess := core.NewSession(bctx, env, sessOpts...)
			ann, err = sess.Brute(g)
			reportStats(*stats, sess)
		default:
			log.Fatalf("unknown algorithm %q", *alg)
		}
		if err != nil {
			log.Fatalf("optimize: %v", err)
		}
	}
	if *dot {
		fmt.Print(ann.DOT())
		return
	}
	fmt.Print(ann.Describe())

	// Every downstream consumer — -explain, -plan-out, both execution
	// engines and the simulator — works off one lowering of the plan.
	if phys == nil {
		if phys, err = plan.Lower(g, env, ann); err != nil {
			log.Fatalf("lower: %v", err)
		}
	}
	if cfg.Explain {
		fmt.Printf("\n%s", phys.Explain())
	}
	if cfg.PlanOut != "" {
		data, eerr := plan.Encode(phys, env)
		if eerr != nil {
			log.Fatalf("-plan-out: %v", eerr)
		}
		if werr := os.WriteFile(cfg.PlanOut, data, 0o644); werr != nil {
			log.Fatalf("-plan-out: %v", werr)
		}
		fmt.Printf("\nwrote physical plan (%d nodes) to %s\n", len(phys.Nodes), cfg.PlanOut)
	}

	if execute {
		run(ctx, cfg, env.Cluster, phys, inputs, tr, root)
		emitObs(cfg, tr, root)
		return
	}
	rep, err := engine.SimulatePlan(phys, env)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	fmt.Printf("\nsimulated time on %d workers: %s   (optimizer: %.2fs)\n",
		*workers, fmtSec(rep.Seconds), ann.OptSeconds)
	fmt.Printf("features: %.3g FLOPs, %.3g net bytes, %.3g intermediate bytes, %.0f tuples\n",
		rep.Features.FLOPs, rep.Features.NetBytes, rep.Features.InterBytes, rep.Features.Tuples)
	fmt.Printf("peak per-worker working set: %.1f GB\n", rep.PeakWorkerBytes/(1<<30))
	emitObs(cfg, tr, root)
}

// emitObs closes the root span and writes whichever observability
// outputs the flags asked for: the span tree (-trace), a Chrome
// trace_event file (-trace-out) and the metrics registry (-metrics).
func emitObs(cfg execConfig, tr *obs.Tracer, root *obs.Span) {
	root.End()
	if tr != nil {
		snap := tr.Snapshot()
		if cfg.Trace {
			fmt.Printf("\ntrace (%d spans, root coverage %.0f%%):\n%s",
				len(snap.Spans), 100*snap.WallCoverage(), snap.Tree())
		}
		if cfg.TraceOut != "" {
			f, err := os.Create(cfg.TraceOut)
			if err != nil {
				log.Fatalf("-trace-out: %v", err)
			}
			if err := snap.WriteChromeTrace(f); err != nil {
				f.Close()
				log.Fatalf("-trace-out: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("-trace-out: %v", err)
			}
			fmt.Printf("\nwrote %d spans to %s (load in chrome://tracing or Perfetto)\n",
				len(snap.Spans), cfg.TraceOut)
		}
	}
	if cfg.Metrics {
		fmt.Printf("\nmetrics:\n%s", obs.Default().Render())
	}
}

// buildPaperScale builds the workload at the paper's published sizes,
// for optimization and simulation only.
func buildPaperScale(wl string, hidden int64, sizeSet int) (*core.Graph, error) {
	switch wl {
	case "motivating":
		return workload.MotivatingChain()
	case "ffnn":
		return workload.FFNNW2Update(workload.PaperFFNN(hidden))
	case "ffnn3":
		return workload.FFNNThreePass(workload.PaperFFNN(hidden))
	case "chain":
		sets := workload.ChainSizeSets()
		if sizeSet < 1 || sizeSet > len(sets) {
			return nil, fmt.Errorf("sizeset must be in 1..%d", len(sets))
		}
		return workload.MatMulChain(sets[sizeSet-1])
	case "inverse":
		return workload.BlockInverse2(workload.PaperBlockInverse())
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
}

// buildExecutable builds the workload with every dimension divided by
// scale plus matching random input matrices.
func buildExecutable(wl string, hidden int64, sizeSet int, scale int64, rng *rand.Rand) (*core.Graph, map[string]*tensor.Dense, error) {
	div := func(x int64) int64 {
		if v := x / scale; v > 0 {
			return v
		}
		return 1
	}
	switch wl {
	case "motivating":
		return nil, nil, fmt.Errorf("the motivating chain exists at paper scale only; use -engine sim or -workload chain")
	case "ffnn", "ffnn3":
		cfg := workload.ScaledFFNN(workload.PaperFFNN(hidden), scale)
		gen := workload.FFNNW2Update
		if wl == "ffnn3" {
			gen = workload.FFNNThreePass
		}
		g, err := gen(cfg)
		if err != nil {
			return nil, nil, err
		}
		return g, workload.FFNNInputs(rng, cfg), nil
	case "chain":
		sets := workload.ChainSizeSets()
		if sizeSet < 1 || sizeSet > len(sets) {
			return nil, nil, fmt.Errorf("sizeset must be in 1..%d", len(sets))
		}
		sz := sets[sizeSet-1]
		shrink := func(s shape.Shape) shape.Shape { return shape.New(div(s.Rows), div(s.Cols)) }
		sz.A, sz.B, sz.C = shrink(sz.A), shrink(sz.B), shrink(sz.C)
		sz.D, sz.E, sz.F = shrink(sz.D), shrink(sz.E), shrink(sz.F)
		g, err := workload.MatMulChain(sz)
		if err != nil {
			return nil, nil, err
		}
		inputs := map[string]*tensor.Dense{}
		for n, s := range map[string]shape.Shape{"A": sz.A, "B": sz.B, "C": sz.C, "D": sz.D, "E": sz.E, "F": sz.F} {
			inputs[n] = tensor.RandNormal(rng, int(s.Rows), int(s.Cols))
		}
		return g, inputs, nil
	case "inverse":
		paper := workload.PaperBlockInverse()
		outer := div(paper.Outer)
		if outer < 2 {
			outer = 2
		}
		inner1 := outer * paper.Inner1 / paper.Outer
		if inner1 < 1 {
			inner1 = 1
		}
		cfg := workload.BlockInverseConfig{
			Outer: outer, Inner1: inner1, Inner2: outer - inner1,
			BlockFormat: format.NewSingle(),
		}
		g, err := workload.BlockInverse2(cfg)
		if err != nil {
			return nil, nil, err
		}
		// A diagonally dominant matrix keeps every Schur complement the
		// identity-based plan inverts well conditioned.
		n, n1 := int(outer), int(inner1)
		full := tensor.RandNormal(rng, 2*n, 2*n)
		for i := 0; i < 2*n; i++ {
			full.Set(i, i, full.At(i, i)+float64(2*n))
		}
		inputs := map[string]*tensor.Dense{
			"A11": full.Slice(0, n1, 0, n1), "A12": full.Slice(0, n1, n1, n),
			"A21": full.Slice(n1, n, 0, n1), "A22": full.Slice(n1, n, n1, n),
			"B1": full.Slice(0, n1, n, 2*n), "B2": full.Slice(n1, n, n, 2*n),
			"C1": full.Slice(n, 2*n, 0, n1), "C2": full.Slice(n, 2*n, n1, n),
			"D": full.Slice(n, 2*n, n, 2*n),
		}
		return g, inputs, nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", wl)
	}
}

// run executes the lowered physical plan for real. The dist path always
// runs the sequential engine too and cross-checks every output bit by
// bit. When cfg.Faults > 0, a seeded fault schedule is injected and the
// run must recover (or, with -fallback, degrade) to the same bits.
func run(ctx context.Context, cfg execConfig, cl costmodel.Cluster, phys *plan.Plan, inputs map[string]*tensor.Dense, tr *obs.Tracer, root *obs.Span) {
	seq := engine.New(cl)
	seq.KernelThreads = cfg.KernThreads
	t0 := time.Now()
	want, err := seq.RunPlanCollectCtx(ctx, phys, inputs)
	if err != nil {
		log.Fatalf("sequential run: %v", err)
	}
	seqWall := time.Since(t0)
	fmt.Printf("\nsequential engine: %d outputs in %v\n", len(want), seqWall.Round(time.Millisecond))
	if cfg.Engine == "seq" {
		return
	}

	opts := []dist.Option{dist.WithMaxRetries(cfg.MaxRetries)}
	if cfg.KernThreads > 0 {
		opts = append(opts, dist.WithKernelThreads(cfg.KernThreads))
	}
	if tr != nil {
		opts = append(opts, dist.WithTracer(tr, root))
	}
	if cfg.Checkpoint {
		opts = append(opts, dist.WithCheckpointing(0, cfg.CkptBudget))
	}
	if cfg.Speculate {
		opts = append(opts, dist.WithSpeculation(dist.DefaultSpeculation()))
	}
	if pl := cfg.peerList(); pl != nil {
		tp, err := netfabric.NewTCP(pl)
		if err != nil {
			log.Fatalf("-peers: %v", err)
		}
		defer tp.Close()
		opts = append(opts, dist.WithTransport(tp))
	}
	if cfg.Faults > 0 {
		ids := make([]int, 0, len(phys.Graph.Vertices))
		for _, v := range phys.Graph.Vertices {
			ids = append(ids, v.ID)
		}
		fp := dist.RandomFaults(cfg.FaultSeed, cfg.Faults, ids, cfg.Shards)
		fmt.Printf("injecting %d seeded faults (seed %d):\n", cfg.Faults, cfg.FaultSeed)
		for _, f := range fp.Faults() {
			fmt.Printf("  %v\n", f)
		}
		opts = append(opts, dist.WithFaults(fp))
	}
	rt, err := dist.New(cl, cfg.Shards, opts...)
	if err != nil {
		log.Fatal(err)
	}
	got, rep, err := rt.RunPlan(ctx, phys, inputs)
	if err != nil {
		if !cfg.Fallback || ctx.Err() != nil {
			log.Fatalf("dist run: %v", err)
		}
		// Graceful degradation: the sequential outputs are already in
		// hand, so report the downgrade and serve those.
		rep.Degraded = true
		rep.DegradedCause = err.Error()
		fmt.Printf("dist engine (%d shards) degraded to sequential: %v\n%s", cfg.Shards, err, rep)
		return
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok || g.Rows != w.Rows || g.Cols != w.Cols {
			log.Fatalf("dist output %d does not match the sequential engine's shape", id)
		}
		for i := range w.Data {
			if math.Float64bits(g.Data[i]) != math.Float64bits(w.Data[i]) {
				log.Fatalf("dist output %d differs from the sequential engine at entry %d", id, i)
			}
		}
	}
	fmt.Printf("dist engine (%d shards): outputs bit-identical to sequential ✓\n%s", cfg.Shards, rep)
	if rep.Wall > 0 {
		fmt.Printf("speedup over sequential: %.2fx\n", float64(seqWall)/float64(rep.Wall))
	}
}

func reportStats(enabled bool, sess *core.Session) {
	if !enabled {
		return
	}
	st := sess.Stats()
	fmt.Printf("optimizer stats: %d classes expanded, %d entries pruned, %d candidates evaluated, %.3fs wall\n",
		st.ClassesExpanded, st.EntriesPruned, st.CandidatesEvaluated, st.WallSeconds)
}

func fmtSec(s float64) string {
	d := int(s + 0.5)
	if d >= 3600 {
		return fmt.Sprintf("%d:%02d:%02d", d/3600, d%3600/60, d%60)
	}
	return fmt.Sprintf("%d:%02d", d/60, d%60)
}
