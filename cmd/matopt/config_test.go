package main

import (
	"strings"
	"testing"
)

// valid returns a config that passes validation; tests mutate one
// field at a time.
func valid() execConfig {
	return execConfig{
		Engine: "dist", Shards: 4, Scale: 100, Parallelism: 8,
		Faults: 0, FaultSeed: 1, MaxRetries: 2,
	}
}

func TestExecConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*execConfig)
		wantErr string // "" means the config must validate
	}{
		{"defaults", func(c *execConfig) {}, ""},
		{"sim engine", func(c *execConfig) { c.Engine = "sim" }, ""},
		{"seq engine", func(c *execConfig) { c.Engine = "seq" }, ""},
		{"faults on dist", func(c *execConfig) { c.Faults = 5 }, ""},
		{"zero retries", func(c *execConfig) { c.MaxRetries = 0 }, ""},
		{"zero fault seed", func(c *execConfig) { c.FaultSeed = 0 }, ""},
		{"trace on sim", func(c *execConfig) { c.Engine = "sim"; c.Trace = true }, ""},
		{"trace-out on seq", func(c *execConfig) { c.Engine = "seq"; c.TraceOut = "t.json" }, ""},
		{"metrics on dist", func(c *execConfig) { c.Metrics = true }, ""},

		{"zero kernel threads (auto)", func(c *execConfig) { c.KernThreads = 0 }, ""},
		{"serial kernel threads", func(c *execConfig) { c.KernThreads = 1 }, ""},
		{"many kernel threads", func(c *execConfig) { c.KernThreads = 64 }, ""},
		{"kernel threads on seq", func(c *execConfig) { c.Engine = "seq"; c.KernThreads = 4 }, ""},

		{"zero parallelism", func(c *execConfig) { c.Parallelism = 0 }, "-parallelism"},
		{"negative parallelism", func(c *execConfig) { c.Parallelism = -3 }, "-parallelism"},
		{"zero shards", func(c *execConfig) { c.Shards = 0 }, "-shards"},
		{"negative shards", func(c *execConfig) { c.Shards = -1 }, "-shards"},
		{"zero scale", func(c *execConfig) { c.Scale = 0 }, "-scale"},
		{"negative scale", func(c *execConfig) { c.Scale = -100 }, "-scale"},
		{"negative kernel threads", func(c *execConfig) { c.KernThreads = -1 }, "-kernel-threads must be non-negative"},
		{"unknown engine", func(c *execConfig) { c.Engine = "mpi" }, "unknown engine"},
		{"negative faults", func(c *execConfig) { c.Faults = -1 }, "-faults must be non-negative"},
		{"negative fault seed", func(c *execConfig) { c.FaultSeed = -7 }, "-fault-seed"},
		{"negative max retries", func(c *execConfig) { c.MaxRetries = -2 }, "-max-retries"},
		{"faults with sim engine", func(c *execConfig) { c.Engine = "sim"; c.Faults = 3 }, "-faults requires -engine dist"},
		{"faults with seq engine", func(c *execConfig) { c.Engine = "seq"; c.Faults = 1 }, "-faults requires -engine dist"},

		{"checkpoint on dist", func(c *execConfig) { c.Checkpoint = true }, ""},
		{"checkpoint with budget", func(c *execConfig) { c.Checkpoint = true; c.CkptBudget = 1 << 20 }, ""},
		{"speculate on dist", func(c *execConfig) { c.Speculate = true }, ""},
		{"checkpoint on seq", func(c *execConfig) { c.Engine = "seq"; c.Checkpoint = true }, "-checkpoint requires -engine dist"},
		{"negative checkpoint budget", func(c *execConfig) { c.Checkpoint = true; c.CkptBudget = -1 }, "-checkpoint-budget"},
		{"budget without checkpoint", func(c *execConfig) { c.CkptBudget = 1024 }, "-checkpoint-budget requires -checkpoint"},
		{"speculate on sim", func(c *execConfig) { c.Engine = "sim"; c.Speculate = true }, "-speculate requires -engine dist"},

		{"peers on dist", func(c *execConfig) { c.Peers = "127.0.0.1:9431" }, ""},
		{"peer list with local", func(c *execConfig) { c.Peers = "local,127.0.0.1:9431" }, ""},
		{"peers on seq", func(c *execConfig) { c.Engine = "seq"; c.Peers = "127.0.0.1:9431" }, "-peers requires -engine dist"},
		{"peers on sim", func(c *execConfig) { c.Engine = "sim"; c.Peers = "127.0.0.1:9431" }, "-peers requires -engine dist"},
		{"empty peer entry", func(c *execConfig) { c.Peers = "127.0.0.1:9431,," }, "empty entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := valid()
			tc.mutate(&c)
			err := c.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %q", tc.wantErr, err)
			}
		})
	}
}

// TestTracingSelector: either trace output form switches the tracer on;
// -metrics alone does not (the registry is always live).
func TestTracingSelector(t *testing.T) {
	c := valid()
	if c.tracing() {
		t.Error("tracing() true with no trace flags set")
	}
	c.Trace = true
	if !c.tracing() {
		t.Error("tracing() false with -trace set")
	}
	c = valid()
	c.TraceOut = "out.json"
	if !c.tracing() {
		t.Error("tracing() false with -trace-out set")
	}
	c = valid()
	c.Metrics = true
	if c.tracing() {
		t.Error("-metrics alone must not enable span recording")
	}
}

// TestValidateReportsFirstProblem: validation stops at the first bad
// flag so the user sees one actionable message, not a cascade.
func TestValidateReportsFirstProblem(t *testing.T) {
	c := valid()
	c.Shards = 0
	c.Faults = -1
	err := c.validate()
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("want the -shards error first, got %v", err)
	}
}
