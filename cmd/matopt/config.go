package main

import (
	"fmt"
	"strings"
)

// execConfig holds the execution-related flag values so their
// validation is testable without invoking main.
type execConfig struct {
	Engine      string // sim | seq | dist
	Shards      int
	Scale       int64
	Parallelism int
	KernThreads int    // kernel threads per local compute (0 = auto, 1 = serial)
	Faults      int    // number of seeded faults to inject (dist only)
	FaultSeed   int64  // schedule seed
	MaxRetries  int    // per-vertex retry budget
	Fallback    bool   // degrade to sequential when retries are exhausted
	Checkpoint  bool   // cost-model-driven checkpoint placement (dist only)
	CkptBudget  int64  // cap on checkpoint-pinned bytes (0 = unbounded)
	Speculate   bool   // speculative straggler re-execution (dist only)
	Peers       string // comma-separated worker addresses for the TCP transport ("" = in-process)
	Trace       bool   // print the span tree after the run
	TraceOut    string // write a Chrome trace_event file here ("" = off)
	Metrics     bool   // print the metrics registry after the run
	Explain     bool   // print the lowered physical plan with per-operator costs
	PlanOut     string // write the serialized physical plan here ("" = off)
	PlanIn      string // load a serialized physical plan instead of optimizing ("" = off)
}

// tracing reports whether a tracer must be attached to the run: either
// output form (-trace tree, -trace-out file) needs the spans recorded.
func (c execConfig) tracing() bool { return c.Trace || c.TraceOut != "" }

func (c execConfig) validate() error {
	if c.Parallelism <= 0 {
		return fmt.Errorf("-parallelism must be positive, got %d", c.Parallelism)
	}
	if c.Shards <= 0 {
		return fmt.Errorf("-shards must be positive, got %d", c.Shards)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %d", c.Scale)
	}
	if c.KernThreads < 0 {
		return fmt.Errorf("-kernel-threads must be non-negative, got %d", c.KernThreads)
	}
	switch c.Engine {
	case "sim", "seq", "dist":
	default:
		return fmt.Errorf("unknown engine %q (want sim, seq or dist)", c.Engine)
	}
	if c.Faults < 0 {
		return fmt.Errorf("-faults must be non-negative, got %d", c.Faults)
	}
	if c.FaultSeed < 0 {
		return fmt.Errorf("-fault-seed must be non-negative, got %d", c.FaultSeed)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("-max-retries must be non-negative, got %d", c.MaxRetries)
	}
	if c.Faults > 0 && c.Engine != "dist" {
		return fmt.Errorf("-faults requires -engine dist, got -engine %s", c.Engine)
	}
	if c.Checkpoint && c.Engine != "dist" {
		return fmt.Errorf("-checkpoint requires -engine dist, got -engine %s", c.Engine)
	}
	if c.CkptBudget < 0 {
		return fmt.Errorf("-checkpoint-budget must be non-negative, got %d", c.CkptBudget)
	}
	if c.CkptBudget > 0 && !c.Checkpoint {
		return fmt.Errorf("-checkpoint-budget requires -checkpoint")
	}
	if c.Speculate && c.Engine != "dist" {
		return fmt.Errorf("-speculate requires -engine dist, got -engine %s", c.Engine)
	}
	if c.PlanIn != "" && c.PlanOut != "" {
		return fmt.Errorf("-plan-in and -plan-out are mutually exclusive")
	}
	if c.Peers != "" && c.Engine != "dist" {
		return fmt.Errorf("-peers requires -engine dist, got -engine %s", c.Engine)
	}
	for _, p := range c.peerList() {
		if p == "" {
			return fmt.Errorf("-peers has an empty entry in %q", c.Peers)
		}
	}
	return nil
}

// peerList splits the -peers flag into worker addresses (nil when the
// flag is unset — the in-process chan transport).
func (c execConfig) peerList() []string {
	if c.Peers == "" {
		return nil
	}
	parts := strings.Split(c.Peers, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
