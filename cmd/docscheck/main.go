// Command docscheck enforces the documentation bar on the public
// package: every exported type, function, method, constant and variable
// must carry a doc comment. `make docs-check` runs it over the
// repository root (the matopt package) and fails the build when
// anything exported is undocumented, printing one file:line per miss.
//
//	docscheck [-dir .]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "directory of the Go package to check")
	flag.Parse()
	missing, err := check(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d exported identifiers lack doc comments:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: all exported identifiers in %s are documented\n", *dir)
}

// check parses the non-test Go files of the package in dir and returns
// one "file:line: kind Name" entry per exported identifier that has no
// doc comment, sorted by position.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		if pkg.Name == "main" || strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d.Recv) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), funcKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// checkGenDecl handles type/const/var declarations. A doc comment on
// the enclosing decl covers every spec in its block (the idiomatic
// grouped-const form); otherwise each exported spec needs its own doc
// or trailing line comment.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether fn is a plain function (nil
// receiver) or a method on an exported type; methods on unexported
// types are not part of the public surface.
func exportedReceiver(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcKind labels a FuncDecl for the report: "func" or "method".
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		return "method"
	}
	return "func"
}
