package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCheckFlagsUndocumentedExports(t *testing.T) {
	dir := writePkg(t, `package demo

type Documented struct{}

// Hit has a doc comment.
func Hit() {}

func Miss() {}

func (Documented) MissMethod() {}

const MissConst = 1

// Grouped consts are covered by the block comment.
const (
	CoveredA = 1
	CoveredB = 2
)

var MissVar = 3

var CoveredVar = 4 // trailing line comments count

type unexported struct{}

func (unexported) Ignored() {}

func alsoIgnored() {}
`)
	missing, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(missing, "\n")
	for _, want := range []string{
		"type Documented is undocumented",
		"func Miss is undocumented",
		"method MissMethod is undocumented",
		"const MissConst is undocumented",
		"var MissVar is undocumented",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing expected finding %q in:\n%s", want, joined)
		}
	}
	if len(missing) != 5 {
		t.Errorf("got %d findings, want 5:\n%s", len(missing), joined)
	}
	for _, name := range []string{"Hit", "CoveredA", "CoveredB", "CoveredVar", "Ignored", "alsoIgnored"} {
		if strings.Contains(joined, name+" is undocumented") {
			t.Errorf("false positive on %s:\n%s", name, joined)
		}
	}
}

func TestCheckCleanPackage(t *testing.T) {
	dir := writePkg(t, `// Package demo is fully documented.
package demo

// Exported has a doc.
type Exported struct{}

// Do does.
func (Exported) Do() {}
`)
	missing, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("clean package flagged: %v", missing)
	}
}

func TestCheckSkipsTestFilesAndMainPackages(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"pkg_test.go": "package demo\n\nfunc TestOnlyHelper() {}\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	missing, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("test files must be skipped, got %v", missing)
	}

	mdir := writePkg(t, "package main\n\nfunc Exported() {}\n")
	missing, err = check(mdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("package main must be skipped, got %v", missing)
	}
}
