package matopt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/netfabric"
	"matopt/internal/obs"
	"matopt/internal/plan"
	"matopt/internal/tensor"
)

// FormatSet selects the universe of physical formats the optimizer may
// choose from (§8.4 restricts it for the optimizer-runtime study).
type FormatSet int

const (
	// AllFormats is the full 19-format universe, sparse layouts included.
	AllFormats FormatSet = iota
	// DenseFormats is the 16-format universe without sparse layouts.
	DenseFormats
	// SingleStripBlockFormats matches §8.4's 16-format restriction.
	SingleStripBlockFormats
	// SingleBlockFormats matches §8.4's 10-format restriction.
	SingleBlockFormats
)

func (fs FormatSet) formats() []format.Format {
	switch fs {
	case DenseFormats:
		return format.DenseOnly()
	case SingleStripBlockFormats:
		return format.SingleStripBlock()
	case SingleBlockFormats:
		return format.SingleBlock()
	default:
		return format.All()
	}
}

// Algorithm selects the optimization algorithm.
type Algorithm int

const (
	// Auto uses the linear-time tree DP on tree-shaped graphs and the
	// Frontier DP on general DAGs (the paper's default).
	Auto Algorithm = iota
	// BruteForce enumerates every type-correct annotation (Algorithm 2);
	// exponential, bounded by the optimizer's Budget.
	BruteForce
)

// Optimizer chooses optimal physical plans for computations. Options are
// recorded first and the environment is built once in NewOptimizer, so
// option order never matters.
type Optimizer struct {
	cluster     Cluster
	formatSet   FormatSet
	model       *costmodel.Model
	algorithm   Algorithm
	budget      time.Duration
	parallelism int
	cacheSize   int
	noCache     bool
	tracer      *Tracer

	env    *core.Env
	cache  *planCache   // nil when WithoutPlanCache was given
	flight *flightGroup // nil when WithoutPlanCache was given
}

// Option configures an Optimizer.
type Option func(*Optimizer)

// WithFormats restricts the format universe.
func WithFormats(fs FormatSet) Option { return func(o *Optimizer) { o.formatSet = fs } }

// WithAlgorithm selects the optimization algorithm.
func WithAlgorithm(a Algorithm) Option { return func(o *Optimizer) { o.algorithm = a } }

// WithBudget bounds the brute-force search time (default 30 minutes, as
// in the paper's Figure 13).
func WithBudget(d time.Duration) Option { return func(o *Optimizer) { o.budget = d } }

// WithModel installs a calibrated cost model (see Calibrate).
func WithModel(m *costmodel.Model) Option { return func(o *Optimizer) { o.model = m } }

// WithParallelism bounds the Frontier DP's candidate-evaluation worker
// pool; n ≤ 1 forces the serial path. The default is GOMAXPROCS.
// Parallel and serial runs produce byte-identical plans.
func WithParallelism(n int) Option { return func(o *Optimizer) { o.parallelism = n } }

// WithoutPlanCache disables the plan cache: every Optimize call searches
// from scratch, as earlier versions of this package did.
func WithoutPlanCache() Option { return func(o *Optimizer) { o.noCache = true } }

// WithPlanCacheSize sets the plan cache's LRU capacity (default
// DefaultPlanCacheSize).
func WithPlanCacheSize(n int) Option { return func(o *Optimizer) { o.cacheSize = n } }

// WithTracer attaches a tracer to the optimizer: every Optimize call
// opens an "optimize" span with "plancache.lookup" and per-algorithm
// children ("frontier" with one "frontier.round" per vertex, "treedp",
// "brute.enumerate"). A nil tracer — the default — disables tracing at
// zero cost. The same tracer may be shared with an Executor (see
// WithTracing) so one Trace covers a plan's whole life.
func WithTracer(t *Tracer) Option { return func(o *Optimizer) { o.tracer = t } }

// NewOptimizer returns an optimizer for the given cluster profile.
func NewOptimizer(cl Cluster, opts ...Option) *Optimizer {
	o := &Optimizer{
		cluster:   cl,
		formatSet: AllFormats,
		algorithm: Auto,
		budget:    30 * time.Minute,
	}
	for _, opt := range opts {
		opt(o)
	}
	o.env = core.NewEnv(o.cluster, o.formatSet.formats())
	if o.model != nil {
		o.env.Model = o.model
	}
	if !o.noCache {
		o.cache = newPlanCache(o.cacheSize)
		o.flight = newFlightGroup()
	}
	return o
}

// Env exposes the optimization environment for advanced callers (the
// experiment harness uses it to cross baselines and clusters).
func (o *Optimizer) Env() *core.Env { return o.env }

// Fingerprint returns the canonical identity of the builder's
// computation under this optimizer's environment — the same key the
// plan cache and the request-coalescing layers use. Two computations
// with the same fingerprint (same graph structure, shapes, densities,
// format universe and cluster profile) share one cached plan. The
// serving layer uses it to coalesce identical in-flight requests.
func (o *Optimizer) Fingerprint(b *Builder) (string, error) {
	if b.err != nil {
		return "", b.err
	}
	return core.Fingerprint(b.g, o.env), nil
}

// CachedPlans reports how many optimized computations the plan cache
// currently holds (0 when the cache is disabled).
func (o *Optimizer) CachedPlans() int {
	if o.cache == nil {
		return 0
	}
	return o.cache.len()
}

// Plan is an optimized, type-correct annotated compute graph paired
// with its lazily-lowered physical plan (the internal/plan IR every
// engine executes). Lowering happens at most once per plan — cache hits
// share the lowered IR with the entry they came from.
type Plan struct {
	ann       *core.Annotation
	env       *core.Env
	stats     core.Stats
	cached    bool
	coalesced bool
	low       *loweredPlan
}

// ErrTimeout reports that the search exceeded its budget or deadline.
var ErrTimeout = core.ErrTimeout

// ErrInfeasible reports that no type-correct annotation exists.
var ErrInfeasible = core.ErrInfeasible

// ErrInternal reports an inconsistency inside the optimizer itself (a
// bug in the search, not in the caller's computation).
var ErrInternal = core.ErrInternal

// ErrShardFailed reports that a dist-engine shard task died
// mid-execution (in-process: an injected crash). Transient — the
// runtime retries the vertex before surfacing it.
var ErrShardFailed = dist.ErrShardFailed

// ErrExchangeTimeout reports that a dist-engine exchange lost messages
// or stalled past its timeout. Transient — retried like ErrShardFailed.
var ErrExchangeTimeout = dist.ErrExchangeTimeout

// ErrRetriesExhausted reports that a dist-engine vertex kept failing
// past the retry budget or per-vertex deadline; with WithFallback the
// Executor degrades to the sequential engine instead of returning it.
var ErrRetriesExhausted = dist.ErrRetriesExhausted

// Optimize computes the cost-optimal annotation of the builder's graph.
func (o *Optimizer) Optimize(b *Builder, outputs ...Matrix) (*Plan, error) {
	return o.OptimizeCtx(context.Background(), b, outputs...)
}

// OptimizeCtx is Optimize under a caller-supplied context: a cancelled
// or expired context aborts the search mid-flight with ErrTimeout
// (deadline) or the context's own error (cancellation). Results are
// served from the plan cache when an identical computation — same graph
// structure, shapes, densities, format universe and cluster profile —
// was optimized before. Concurrent calls that miss the cache on the
// same fingerprint are coalesced: exactly one runs the search, the rest
// wait and share its plan (Plan.Coalesced reports which happened).
func (o *Optimizer) OptimizeCtx(ctx context.Context, b *Builder, outputs ...Matrix) (*Plan, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := b.g
	if g.NumOps() == 0 {
		return nil, errors.New("matopt: computation has no operations")
	}
	span := o.tracer.Start(nil, "optimize").SetInt("vertices", int64(len(g.Vertices)))
	defer span.End()
	if o.cache == nil {
		ann, stats, err := o.search(ctx, g, span)
		if err != nil {
			return nil, err
		}
		return &Plan{ann: ann, env: o.env, stats: stats, low: &loweredPlan{}}, nil
	}
	lspan := o.tracer.Start(span, "plancache.lookup")
	key := fmt.Sprintf("%d|%s", o.algorithm, core.Fingerprint(g, o.env))
	ann, low, ok := o.cache.get(key)
	lspan.SetBool("hit", ok).End()
	if ok {
		obs.Default().Counter("matopt.plancache.hits").Inc()
		span.SetBool("cached", true)
		return &Plan{ann: ann, env: o.env, cached: true, low: low}, nil
	}
	// Cache miss: coalesce with any identical in-flight search. The
	// leader populates the cache before waiters are released, so every
	// later request — coalesced or not — shares one lowered plan.
	ann, low, stats, leader, err := o.flight.do(ctx, key, func() (*core.Annotation, *loweredPlan, core.Stats, error) {
		obs.Default().Counter("matopt.plancache.misses").Inc()
		a, st, serr := o.search(ctx, g, span)
		if serr != nil {
			return nil, nil, st, serr
		}
		l := &loweredPlan{}
		o.cache.put(key, a, l)
		return a, l, st, nil
	})
	if err != nil {
		return nil, err
	}
	if leader {
		return &Plan{ann: ann, env: o.env, stats: stats, low: low}, nil
	}
	obs.Default().Counter("matopt.plancache.coalesced").Inc()
	span.SetBool("coalesced", true)
	return &Plan{ann: ann, env: o.env, coalesced: true, low: low}, nil
}

// search runs the configured optimization algorithm on g.
func (o *Optimizer) search(ctx context.Context, g *core.Graph, span *Span) (*core.Annotation, core.Stats, error) {
	var ann *core.Annotation
	var err error
	var sess *core.Session
	if o.algorithm == BruteForce {
		bctx, cancel := context.WithTimeout(ctx, o.budget)
		defer cancel()
		sess = o.newSession(bctx, span)
		ann, err = sess.Brute(g)
	} else {
		sess = o.newSession(ctx, span)
		ann, err = sess.Optimize(g)
	}
	if err != nil {
		return nil, core.Stats{}, err
	}
	return ann, sess.Stats(), nil
}

func (o *Optimizer) newSession(ctx context.Context, span *Span) *core.Session {
	var opts []core.SessionOption
	if o.parallelism > 0 {
		opts = append(opts, core.WithParallelism(o.parallelism))
	}
	if o.tracer != nil {
		opts = append(opts, core.WithTracer(o.tracer, span))
	}
	return core.NewSession(ctx, o.env, opts...)
}

// PredictedSeconds returns the cost model's total predicted running time.
func (p *Plan) PredictedSeconds() float64 { return p.ann.Total() }

// OptimizerSeconds returns the wall time the optimizer itself took.
func (p *Plan) OptimizerSeconds() float64 { return p.ann.OptSeconds }

// OptimizerStats returns the search's per-run instrumentation: classes
// expanded, beam entries pruned, candidates evaluated and wall time. A
// plan served from the cache reports zeroes — no search ran.
func (p *Plan) OptimizerStats() core.Stats { return p.stats }

// Cached reports whether the plan was served from the plan cache rather
// than a fresh search.
func (p *Plan) Cached() bool { return p.cached }

// Coalesced reports whether the plan was obtained by waiting on an
// identical concurrent optimization rather than searching: of N
// concurrent cache-missing requests for the same computation, exactly
// one runs the search (Cached and Coalesced both false) and the other
// N−1 coalesce onto it.
func (p *Plan) Coalesced() bool { return p.coalesced }

// Describe renders the chosen implementations, formats and re-layouts.
func (p *Plan) Describe() string { return p.ann.Describe() }

// Annotation exposes the underlying annotated graph.
func (p *Plan) Annotation() *core.Annotation { return p.ann }

// Physical returns the plan lowered to the shared physical-plan IR
// (internal/plan) that every engine executes. Lowering runs at most
// once per plan; repeated calls — and every Executor run of this plan —
// share the same lowered IR. The IR is engine-invariant, so the same
// physical plan drives the sequential engine and the dist runtime at
// any shard count.
func (p *Plan) Physical() (*plan.Plan, error) {
	if p.low == nil {
		p.low = &loweredPlan{}
	}
	return p.low.lower(p.env, p.ann)
}

// Explain pretty-prints the lowered physical plan: one line per
// physical operator with its strategy class and model-predicted cost
// (the CLI's -explain output).
func (p *Plan) Explain() (string, error) {
	pp, err := p.Physical()
	if err != nil {
		return "", err
	}
	return pp.Explain(), nil
}

// Verify re-checks the plan's type-correctness (§4.2).
func (p *Plan) Verify() error { return p.ann.Verify(p.env) }

// EngineKind selects which execution runtime an Executor drives.
type EngineKind int

const (
	// SequentialEngine is the in-process relational engine: one vertex at
	// a time, tuples iterated in sorted order. It is the reference
	// semantics every other engine must reproduce bit-for-bit.
	SequentialEngine EngineKind = iota
	// DistEngine is the sharded multi-worker runtime (internal/dist):
	// relations hash-partitioned across shard goroutines, operators
	// exchanging tuples over a byte-metered shuffle fabric, independent
	// DAG vertices executing concurrently. Results are bit-identical to
	// SequentialEngine; each run additionally produces a DistReport.
	DistEngine
)

// ExecutorOption configures an Executor.
type ExecutorOption func(*Executor)

// WithEngineKind selects the execution runtime (default SequentialEngine).
func WithEngineKind(k EngineKind) ExecutorOption { return func(x *Executor) { x.kind = k } }

// WithShards sets the DistEngine's shard count; n ≤ 0 selects
// dist.DefaultShards (GOMAXPROCS). Ignored by the sequential engine.
func WithShards(n int) ExecutorOption { return func(x *Executor) { x.shards = n } }

// WithFallback makes the Executor degrade gracefully: when a DistEngine
// run fails after its retries are exhausted, the plan is transparently
// re-executed on the sequential engine (which produces bit-identical
// results) and the downgrade is recorded on DistReport. Cancellation is
// never masked — a context error still aborts the run. Ignored by the
// sequential engine.
func WithFallback() ExecutorOption { return func(x *Executor) { x.fallback = true } }

// WithMaxRetries bounds how many times the DistEngine recomputes a
// vertex whose execution failed transiently before giving up (default
// dist.DefaultMaxRetries). Ignored by the sequential engine.
func WithMaxRetries(n int) ExecutorOption { return func(x *Executor) { x.maxRetries = &n } }

// WithFaults installs a deterministic fault-injection schedule on the
// DistEngine — crashes, node losses, dropped or delayed exchanges,
// straggler shards — for chaos testing recovery paths. Outputs remain
// bit-identical to the sequential engine under every recoverable
// schedule. Ignored by the sequential engine.
func WithFaults(p *FaultPlan) ExecutorOption { return func(x *Executor) { x.faults = p } }

// WithCheckpointing enables the DistEngine's cost-model-driven
// checkpoint placement: intermediates whose recompute cost exceeds
// multiple × their materialization cost stay resident for recovery,
// truncating the lineage cascades a node loss can trigger. multiple ≤ 0
// uses the cost model's default; budgetBytes ≤ 0 means unbounded, else
// it caps the pinned bytes (deepest vertices pinned first). Ignored by
// the sequential engine.
func WithCheckpointing(multiple float64, budgetBytes int64) ExecutorOption {
	return func(x *Executor) { x.ckptOn, x.ckptMultiple, x.ckptBudget = true, multiple, budgetBytes }
}

// WithSpeculation enables the DistEngine's speculative straggler
// re-execution: a vertex attempt exceeding the run's own p99-derived
// deadline gets a duplicate launched on other shards, and the first
// result wins — bit-identically, since both attempts replay the same
// deterministic kernels. Ignored by the sequential engine.
func WithSpeculation(s Speculation) ExecutorOption {
	return func(x *Executor) { x.spec = &s }
}

// WithKernelThreads bounds the threads each local compute kernel may
// use, on either engine. Kernels run on a shared GOMAXPROCS-bounded
// worker pool, so the process never oversubscribes the machine no
// matter how many runs or shards are active. n = 1 forces serial
// kernels; n ≤ 0 (the default) picks automatically — the whole machine
// for the sequential engine, and GOMAXPROCS divided by the shard count
// (floor 1) per shard for the DistEngine, so shard parallelism and
// kernel parallelism compose. Results are bit-identical at every
// setting; see KERNELS.md for the determinism argument.
func WithKernelThreads(n int) ExecutorOption { return func(x *Executor) { x.kernelThreads = n } }

// LocalPeer is the WithPeers entry meaning "host this shard on the
// coordinator process itself" — its exchanges never touch a socket.
const LocalPeer = netfabric.LocalPeer

// WithPeers maps the DistEngine's shards onto worker processes: shard s
// is hosted by peers[s % len(peers)], where each entry is either a
// `matoptd -worker -listen` address ("10.0.0.7:7070") or LocalPeer.
// With at least one remote peer every cross-shard exchange moves over a
// real TCP connection — length-prefixed frames, per-peer pooled
// connections, wire bytes metered onto DistReport — and wire failures
// (refused dials, severed connections) ride the same retry ladder as
// exchange timeouts, degrading to the sequential engine under
// WithFallback. Results stay bit-identical to the in-process transport
// and the sequential engine. An empty call (or none) keeps the default
// in-process channel transport. Ignored by the sequential engine.
func WithPeers(peers ...string) ExecutorOption {
	return func(x *Executor) { x.peers = peers }
}

// WithTracing attaches a tracer to the Executor: every run opens an
// "execute" span; a DistEngine run nests its "dist.run" span (with
// per-vertex, per-attempt, per-exchange and retry children) underneath,
// and a degraded run adds a "fallback.sequential" span carrying the
// cause. A nil tracer — the default — disables tracing at zero cost.
// Named WithTracing rather than WithTracer only because Optimizer and
// Executor options are distinct types; share one *Tracer between both
// to get a single Trace covering optimize + execute.
func WithTracing(t *Tracer) ExecutorOption { return func(x *Executor) { x.tracer = t } }

// FaultPlan is a deterministic schedule of injected failures for the
// dist runtime; build one with NewFaultPlan or RandomFaults.
type FaultPlan = dist.FaultPlan

// Fault is one scheduled failure in a FaultPlan.
type Fault = dist.Fault

// FaultKind selects what a Fault breaks.
type FaultKind = dist.FaultKind

// Fault kinds, re-exported from the dist runtime.
const (
	FaultCrash         = dist.FaultCrash
	FaultDropExchange  = dist.FaultDropExchange
	FaultDelayExchange = dist.FaultDelayExchange
	FaultSlowShard     = dist.FaultSlowShard
	FaultNodeLoss      = dist.FaultNodeLoss
)

// Speculation configures the DistEngine's straggler re-execution; see
// WithSpeculation and dist.Speculation.
type Speculation = dist.Speculation

// DefaultSpeculation is a conservative speculation profile.
func DefaultSpeculation() Speculation { return dist.DefaultSpeculation() }

// RetriesExhaustedError carries the failing vertex, attempt count and
// root-cause fault behind an ErrRetriesExhausted; errors.As extracts it
// from any dist-engine error.
type RetriesExhaustedError = dist.RetriesExhaustedError

// NewFaultPlan builds an explicit fault schedule.
func NewFaultPlan(faults ...Fault) *FaultPlan { return dist.NewFaultPlan(faults...) }

// RandomFaults derives a reproducible schedule of n faults from a seed
// over the given vertex IDs and shard count.
func RandomFaults(seed int64, n int, vertices []int, shards int) *FaultPlan {
	return dist.RandomFaults(seed, n, vertices, shards)
}

// DistReport is the dist runtime's per-run measurement: actual bytes and
// messages over every exchange, per-shard busy time, peak resident
// bytes — directly comparable against the cost model's predictions —
// plus the recovery record (faults injected, retries taken, and whether
// the run degraded to the sequential engine).
type DistReport = dist.Report

// Executor runs plans on real data, over either the in-process
// sequential relational engine or the sharded dist runtime.
type Executor struct {
	cluster    Cluster
	eng        *engine.Engine
	kind       EngineKind
	shards     int
	fallback   bool
	maxRetries *int // nil = dist runtime default
	faults     *FaultPlan
	tracer     *Tracer

	ckptOn        bool
	ckptMultiple  float64
	ckptBudget    int64
	spec          *Speculation
	kernelThreads int
	peers         []string

	mu         sync.Mutex
	lastReport *DistReport
}

// NewExecutor returns an executor for the given cluster profile;
// options select the runtime (default: sequential).
func NewExecutor(cl Cluster, opts ...ExecutorOption) *Executor {
	x := &Executor{cluster: cl, eng: engine.New(cl)}
	for _, opt := range opts {
		opt(x)
	}
	if x.shards <= 0 {
		x.shards = dist.DefaultShards()
	}
	x.eng.KernelThreads = x.kernelThreads
	return x
}

// Run executes the plan; inputs maps input names to dense matrices. The
// result maps each sink's vertex ID to its dense output; for the common
// single-output case use RunSingle.
func (x *Executor) Run(p *Plan, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, error) {
	return x.RunCtx(context.Background(), p, inputs)
}

// RunCtx is Run under a caller-supplied context; execution checks the
// context between vertices and aborts with its error when cancelled.
// With WithFallback, a DistEngine run that fails for any reason other
// than cancellation is transparently re-executed on the sequential
// engine; DistReport then carries Degraded and the failure cause.
func (x *Executor) RunCtx(ctx context.Context, p *Plan, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, error) {
	span := x.tracer.Start(nil, "execute")
	defer span.End()
	// One lowering serves every engine: the physical IR is shared with
	// the plan cache, so repeated runs of a cached plan never re-lower.
	pp, err := p.Physical()
	if err != nil {
		return nil, err
	}
	if x.kind == DistEngine {
		span.SetStr("engine", "dist")
		opts := []dist.Option{dist.WithFaults(x.faults), dist.WithTracer(x.tracer, span)}
		if x.maxRetries != nil {
			opts = append(opts, dist.WithMaxRetries(*x.maxRetries))
		}
		if x.ckptOn {
			opts = append(opts, dist.WithCheckpointing(x.ckptMultiple, x.ckptBudget))
		}
		if x.spec != nil {
			opts = append(opts, dist.WithSpeculation(*x.spec))
		}
		if x.kernelThreads > 0 {
			opts = append(opts, dist.WithKernelThreads(x.kernelThreads))
		}
		if len(x.peers) > 0 {
			// One transport per run: pooled connections live for the
			// run's exchanges and are torn down with it, so a degraded
			// or failed run never leaks sockets.
			tp, err := netfabric.NewTCP(x.peers)
			if err != nil {
				return nil, err
			}
			defer tp.Close()
			opts = append(opts, dist.WithTransport(tp))
		}
		rt, err := dist.New(x.cluster, x.shards, opts...)
		if err != nil {
			return nil, err
		}
		outs, rep, err := rt.RunPlan(ctx, pp, inputs)
		if err != nil {
			if !x.fallback || ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			// Keep the failed attempt's Report — its meters record what
			// the dist run shipped, retried and injected before giving
			// up, which is exactly what a caller diagnosing the
			// degradation needs. Only a run that died before newRun
			// (impossible today) would leave rep nil.
			if rep == nil {
				rep = &dist.Report{Shards: x.shards}
			}
			rep.Degraded = true
			rep.DegradedCause = err.Error()
			x.mu.Lock()
			x.lastReport = rep
			x.mu.Unlock()
			fspan := x.tracer.Start(span, "fallback.sequential").SetStr("cause", err.Error())
			defer fspan.End()
			return x.eng.RunPlanCollectCtx(ctx, pp, inputs)
		}
		x.mu.Lock()
		x.lastReport = rep
		x.mu.Unlock()
		return outs, nil
	}
	span.SetStr("engine", "seq")
	sspan := x.tracer.Start(span, "seq.run")
	defer sspan.End()
	return x.eng.RunPlanCollectCtx(ctx, pp, inputs)
}

// DistReport returns the measurement of the most recent DistEngine run,
// or nil when none has completed. After a degraded run (WithFallback)
// the report carries the attempted dist run's meters — traffic shipped,
// retries taken, faults injected — alongside Degraded/DegradedCause,
// not a zeroed report.
func (x *Executor) DistReport() *DistReport {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.lastReport
}

// Trace returns a snapshot of the tracer attached with WithTracing, or
// nil when the Executor is untraced. When the same tracer is shared
// with the Optimizer, the snapshot covers both optimization and
// execution spans.
func (x *Executor) Trace() *Trace { return x.tracer.Snapshot() }

// RunSingle executes a single-output plan and returns its result.
func (x *Executor) RunSingle(p *Plan, inputs map[string]*tensor.Dense) (*tensor.Dense, error) {
	outs, err := x.Run(p, inputs)
	if err != nil {
		return nil, err
	}
	sinks := p.ann.Graph.Sinks()
	if len(sinks) != 1 {
		return nil, fmt.Errorf("matopt: plan has %d outputs; use Run", len(sinks))
	}
	return outs[sinks[0].ID], nil
}

// Stats reports what the execution actually did.
func (x *Executor) Stats() engine.Stats { return x.eng.Stats() }

// RunAdaptive executes the builder's computation with mid-run
// re-optimization (the scheme §7 of the paper sketches): the optimal
// plan runs vertex by vertex, every intermediate's true density is
// measured, and when an estimate's relative error exceeds threshold
// (the paper suggests 1.2) the remaining computation is re-optimized
// with the measured densities before continuing. Adaptive execution
// always uses the sequential engine, regardless of WithEngineKind —
// its vertex-at-a-time measurement loop has no sharded counterpart yet.
func (x *Executor) RunAdaptive(o *Optimizer, b *Builder, inputs map[string]*tensor.Dense, threshold float64) (*engine.AdaptiveResult, error) {
	if b.err != nil {
		return nil, b.err
	}
	return x.eng.RunAdaptive(b.g, o.env, inputs, threshold)
}

// Simulate walks the plan at full scale without materializing data,
// returning the virtual wall time and resource report; the error is the
// paper's Fail outcome (e.g. a plan that exceeds worker RAM). The walk
// folds the same lowered physical IR the engines execute.
func Simulate(p *Plan) (engine.Report, error) {
	pp, err := p.Physical()
	if err != nil {
		return engine.Report{OptSeconds: p.ann.OptSeconds}, err
	}
	return engine.SimulatePlan(pp, p.env)
}

// Dense re-exports the engine's dense matrix type for inputs/outputs.
type Dense = tensor.Dense

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense { return tensor.NewDense(rows, cols) }
