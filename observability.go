package matopt

import (
	"matopt/internal/obs"
)

// Tracer collects spans for traced optimization and execution runs;
// create one with NewTracer and attach it with WithTracer (Optimizer)
// and WithTracing (Executor). A nil tracer is valid and disables
// tracing at zero cost. See DESIGN.md §11 for the span taxonomy.
type Tracer = obs.Tracer

// Trace is an immutable snapshot of a tracer's spans with exporters:
// Tree (human-readable span tree), WriteJSON, and WriteChromeTrace
// (a trace_event file loadable in chrome://tracing or Perfetto).
type Trace = obs.Trace

// Span is one timed region of a traced run; spans carry a parent link
// and typed attributes, and every method no-ops on a nil receiver.
type Span = obs.Span

// SpanData is the immutable snapshot of one span inside a Trace.
type SpanData = obs.SpanData

// MetricsRegistry is a set of named, labelled metrics — atomic
// counters, gauges and fixed-bucket histograms.
type MetricsRegistry = obs.Registry

// Metric is one snapshot entry of a MetricsRegistry.
type Metric = obs.Metric

// Label is one key=value dimension of a metric's identity; build one
// with L. Two metrics with the same name and the same label set are the
// same instrument regardless of label order.
type Label = obs.Label

// L builds a metric Label.
func L(key, value string) Label { return obs.L(key, value) }

// NewTracer returns an empty, enabled tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// Metrics returns the process-wide metrics registry. The optimizer
// records plan-cache hits and misses here (matopt.plancache.hits /
// matopt.plancache.misses), and every dist run merges its meters —
// exchange traffic, shard busy time, retries, queue wait, vertex wall
// time — into it when the run's Report is built, so totals accumulate
// across runs. Render it with Metrics().Render() or walk
// Metrics().Snapshot(); metric names and units are listed in
// DESIGN.md §11.
func Metrics() *MetricsRegistry { return obs.Default() }
