module matopt

go 1.22
