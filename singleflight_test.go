package matopt

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/obs"
)

// TestOptimizeCoalescesConcurrentMisses is the thundering-herd
// regression: N concurrent Optimize calls for the same computation that
// all miss the cold cache must run exactly one Frontier search — one
// leader, N−1 waiters sharing its plan through the cache's singleflight
// boundary.
func TestOptimizeCoalescesConcurrentMisses(t *testing.T) {
	const n = 16
	o := NewOptimizer(ClusterR5D(5))
	missesBefore := obs.Default().Counter("matopt.plancache.misses").Value()

	start := make(chan struct{})
	plans := make([]*Plan, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			plans[i], errs[i] = o.OptimizeCtx(context.Background(), motivatingBuilder(1))
		}(i)
	}
	close(start)
	wg.Wait()

	var leaders, followers int
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !plans[i].Cached() && !plans[i].Coalesced() {
			leaders++
		} else {
			followers++
		}
		if plans[i].Describe() != plans[0].Describe() {
			t.Fatalf("request %d produced a different plan", i)
		}
	}
	if leaders != 1 {
		t.Fatalf("%d requests ran a search, want exactly 1 (%d coalesced/cached)", leaders, followers)
	}
	if d := obs.Default().Counter("matopt.plancache.misses").Value() - missesBefore; d != 1 {
		t.Fatalf("plan cache recorded %d misses for %d concurrent identical requests, want 1", d, n)
	}

	// Every request — leader, waiter, or late cache hit — must share the
	// one lowered physical plan.
	pp0, err := plans[0].Physical()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if pp, _ := plans[i].Physical(); pp != pp0 {
			t.Fatalf("request %d lowered its own physical plan instead of sharing the leader's", i)
		}
	}
}

// TestFlightGroupSharesLeaderError: a leader failing with a
// non-context error releases its waiters with that same error.
func TestFlightGroupSharesLeaderError(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	gate := make(chan struct{})
	sentinel := errors.New("search blew up")

	var waitErr error
	var leaderRole bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, _, _, err := g.do(context.Background(), "k", func() (*core.Annotation, *loweredPlan, core.Stats, error) {
			close(started)
			<-gate
			return nil, nil, core.Stats{}, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("leader error = %v, want sentinel", err)
		}
	}()
	go func() {
		defer wg.Done()
		<-started
		_, _, _, leaderRole, waitErr = g.do(context.Background(), "k", func() (*core.Annotation, *loweredPlan, core.Stats, error) {
			t.Error("waiter ran the search despite an in-flight leader")
			return nil, nil, core.Stats{}, nil
		})
	}()
	<-started
	time.Sleep(10 * time.Millisecond) // let the waiter park on the call
	close(gate)
	wg.Wait()
	if leaderRole {
		t.Fatal("second caller reported itself leader")
	}
	if !errors.Is(waitErr, sentinel) {
		t.Fatalf("waiter error = %v, want the leader's error", waitErr)
	}
}

// TestFlightGroupAbandonedLeader: a waiter whose own context is live
// must not inherit a leader's cancellation — it retries and runs the
// search itself.
func TestFlightGroupAbandonedLeader(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	gate := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, _, err := g.do(context.Background(), "k", func() (*core.Annotation, *loweredPlan, core.Stats, error) {
			close(started)
			<-gate
			return nil, nil, core.Stats{}, context.Canceled
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader error = %v, want context.Canceled", err)
		}
	}()
	<-started

	done := make(chan struct{})
	var retried bool
	var leaderRole bool
	var err error
	go func() {
		defer close(done)
		_, _, _, leaderRole, err = g.do(context.Background(), "k", func() (*core.Annotation, *loweredPlan, core.Stats, error) {
			retried = true
			return nil, nil, core.Stats{}, nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // park the waiter on the doomed leader
	close(gate)
	<-done
	wg.Wait()
	if err != nil {
		t.Fatalf("retrying waiter returned %v", err)
	}
	if !retried || !leaderRole {
		t.Fatalf("waiter did not take over after the leader was abandoned (retried=%v leader=%v)", retried, leaderRole)
	}
}

// TestFlightGroupWaiterCancellation: a waiter whose own deadline
// expires while parked reports ErrTimeout without waiting the leader
// out.
func TestFlightGroupWaiterCancellation(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	gate := make(chan struct{})
	defer close(gate)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.do(context.Background(), "k", func() (*core.Annotation, *loweredPlan, core.Stats, error) {
			close(started)
			<-gate
			return nil, nil, core.Stats{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, _, _, err := g.do(ctx, "k", func() (*core.Annotation, *loweredPlan, core.Stats, error) {
		t.Error("expired waiter ran the search")
		return nil, nil, core.Stats{}, nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired waiter returned %v, want ErrTimeout", err)
	}
}
