# Developer gate: `make check` is what CI runs and what a change must
# pass before merging. Individual targets are available for quick loops.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test race

# gofmt -l prints unformatted files; fail if it prints anything.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The optimizer's parallel Frontier expansion, the engine's
# context-aware execution and the sharded dist runtime are the
# concurrency-bearing packages.
race:
	$(GO) test -race ./internal/core/ ./internal/engine/ ./internal/dist/

# Runs every benchmark once and records the dist-vs-sequential
# comparison in BENCH_dist.json plus the fault-tolerance overhead in
# BENCH_dist_faults.json (nofault_ns there should stay within noise of
# dist_ns here).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	BENCH_DIST_JSON=$(CURDIR)/BENCH_dist.json $(GO) test -run '^$$' \
		-bench BenchmarkDistVsSequential -benchtime 1x ./internal/dist/
	BENCH_DIST_FAULTS_JSON=$(CURDIR)/BENCH_dist_faults.json $(GO) test -run '^$$' \
		-bench BenchmarkDistFaultOverhead -benchtime 1x ./internal/dist/
