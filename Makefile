# Developer gate: `make check` is what CI runs and what a change must
# pass before merging. Individual targets are available for quick loops.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test race

# gofmt -l prints unformatted files; fail if it prints anything.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The optimizer's parallel Frontier expansion and the engine's
# context-aware execution are the concurrency-bearing packages.
race:
	$(GO) test -race ./internal/core/ ./internal/engine/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
