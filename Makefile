# Developer gate: `make check` is what CI runs and what a change must
# pass before merging. Individual targets are available for quick loops.

GO ?= go

.PHONY: check fmt vet build test race chaos bench docs-check

check: fmt vet build test race chaos docs-check

# gofmt -l prints unformatted files; fail if it prints anything.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The optimizer's parallel Frontier expansion, the engine's
# context-aware execution, the sharded dist runtime, the shared kernel
# worker pool and the tensor/sparse kernels that fork onto it, the plan
# layer (whose lowered IR is shared across concurrent engine runs), the
# metrics registry / tracer they hammer concurrently, the public
# package's singleflight coalescing, and the serving layer's admission
# control and drain are the concurrency-bearing packages.
race:
	$(GO) test -race . ./internal/core/ ./internal/engine/ ./internal/dist/ ./internal/netfabric/ ./internal/obs/ ./internal/plan/ ./internal/serve/ ./internal/pool/ ./internal/tensor/ ./internal/sparse/

# The fault-injection sweep under the race detector: seeded crash /
# drop / delay / straggler schedules, cascading node-loss recovery,
# checkpoint-pinned reruns, speculative re-execution and the
# cancellation / shutdown-gap checks must all recover bit-identically
# and leak no goroutines. The ChaosNet rows inject network faults into
# the TCP transport — a peer severing connections mid-exchange and a
# worker departing mid-run (later dials refused) — and require the
# same bit-identical recovery or typed degradation.
chaos:
	$(GO) test -race -run 'Chaos|NodeLoss|Checkpoint|Speculat|Delayed|Retries|Deadline|Shutdown|Cancel|RandomFaults' \
		. ./internal/dist/

# Every exported identifier in the public matopt package, the shared
# physical-plan IR and the serving layer must carry a doc comment;
# docscheck prints one file:line per miss.
docs-check:
	$(GO) run ./cmd/docscheck -dir .
	$(GO) run ./cmd/docscheck -dir ./internal/plan
	$(GO) run ./cmd/docscheck -dir ./internal/serve
	$(GO) run ./cmd/docscheck -dir ./internal/pool
	$(GO) run ./cmd/docscheck -dir ./internal/netfabric

# Runs every benchmark once and records the dist-vs-sequential
# comparison in BENCH_dist.json (now with a span-derived phase_ns
# breakdown), the fault-tolerance overhead in BENCH_dist_faults.json
# (nofault_ns there should stay within noise of dist_ns here), the
# tracing overhead in BENCH_obs.json (untraced_ns should also stay
# within noise of dist_ns), and the plan layer's lowering / -explain /
# serialization costs in BENCH_plan.json (dist_plan_ns there is the
# same workload executed from a pre-lowered plan, so it too should stay
# within noise of dist_ns). BENCH_serve.json records the serving
# layer's warm-cache throughput, p50/p99 request latency, the direct
# in-process call it wraps, and the coalesce hit rate.
# BENCH_recovery.json records what a sink node loss costs with lineage
# recompute alone next to the same loss under checkpoint pins, and the
# memory the pins hold relative to the run's resident peak.
# BENCH_kernels.json records the compute-kernel layer: naive vs
# cache-blocked vs threaded GEMM per shape, a sparse SpMM point, and
# the dist runtime end to end with kernels forced serial vs
# auto-budgeted; on a multi-core host the benchmark fails if threaded
# GEMM regresses below serial (on a single-CPU host that gate is
# skipped with a warning — there is no parallelism to measure — and
# every record carries numcpu so a reader can tell).
# BENCH_netfabric.json compares the dist exchanges over the in-process
# chan transport and over loopback TCP through a worker server, with
# the framed wire bytes next to the cost model's NetBytesCeiling.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	BENCH_DIST_JSON=$(CURDIR)/BENCH_dist.json $(GO) test -run '^$$' \
		-bench BenchmarkDistVsSequential -benchtime 1x ./internal/dist/
	BENCH_DIST_FAULTS_JSON=$(CURDIR)/BENCH_dist_faults.json $(GO) test -run '^$$' \
		-bench BenchmarkDistFaultOverhead -benchtime 1x ./internal/dist/
	BENCH_OBS_JSON=$(CURDIR)/BENCH_obs.json $(GO) test -run '^$$' \
		-bench BenchmarkDistTracingOverhead -benchtime 1x ./internal/dist/
	BENCH_PLAN_JSON=$(CURDIR)/BENCH_plan.json $(GO) test -run '^$$' \
		-bench BenchmarkPlanLowering -benchtime 1x ./internal/plan/
	BENCH_SERVE_JSON=$(CURDIR)/BENCH_serve.json $(GO) test -run '^$$' \
		-bench BenchmarkServeWarmOptimize -benchtime 200x ./internal/serve/
	BENCH_RECOVERY_JSON=$(CURDIR)/BENCH_recovery.json $(GO) test -run '^$$' \
		-bench BenchmarkRecovery -benchtime 1x ./internal/dist/
	BENCH_KERNELS_JSON=$(CURDIR)/BENCH_kernels.json $(GO) test -run '^$$' \
		-bench BenchmarkKernels -benchtime 1x ./internal/dist/
	BENCH_NETFABRIC_JSON=$(CURDIR)/BENCH_netfabric.json $(GO) test -run '^$$' \
		-bench BenchmarkNetfabric -benchtime 1x ./internal/dist/
